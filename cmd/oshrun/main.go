// Command oshrun launches one application kernel on the simulated cluster,
// like `oshrun -np N ./app` launches an OpenSHMEM program:
//
//	oshrun -np 64 -ppn 8 -conn ondemand -app heat2d
//
// Applications: hello, heat2d, ep, mg, bt, sp, graph500.
// It reports the start_pes breakdown, total job time (virtual), and the
// resource usage counters the paper studies. The fault plane is exposed for
// resilience experiments: -drop/-dup/-flap/-slow/-corrupt/-rc-corrupt/
// -torn-writes inject fabric faults, -kill-pe/-wedge-pe schedule PE failures,
// -rails/-fail-port/-fail-rail/-partition exercise the multi-rail fault plane
// (automatic path migration, rail failover, partition suspend/heal),
// -pmi-slow/-pmi-drop/-pmi-crash degrade the out-of-band control plane, and
// -deadline arms the hung-job watchdog. See the README's fault-flag table.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"goshmem/internal/apps/graph500"
	"goshmem/internal/apps/heat2d"
	"goshmem/internal/apps/nas"
	"goshmem/internal/apps/traffic"
	"goshmem/internal/cluster"
	"goshmem/internal/gasnet"
	"goshmem/internal/ib"
	"goshmem/internal/mpi"
	"goshmem/internal/obs"
	"goshmem/internal/pmi"
	"goshmem/internal/shmem"
	"goshmem/internal/vclock"
)

// exitAbort terminates with the job's worst per-PE exit status when the run
// aborted (used by the JSON path, which must not print the text dump).
func exitAbort(res *cluster.Result) {
	if !res.Aborted {
		return
	}
	maxCode := 1
	for _, p := range res.PEs {
		if p.ExitCode > maxCode {
			maxCode = p.ExitCode
		}
	}
	os.Exit(maxCode)
}

// printPhaseTable prints the per-phase startup breakdown aggregated across
// PEs (average and worst single PE), followed by which endpoint-exchange
// path the job actually ran — the line that records a control-plane
// degradation (Iallgather lost, Put-Fence-Get fallback taken).
func printPhaseTable(res *cluster.Result) {
	phases := res.Obs.StartupPhases()
	names, sums, maxes := obs.PhaseTotals(phases)
	if len(names) == 0 {
		return
	}
	np := int64(len(phases))
	fmt.Printf("\n--- start_pes phase breakdown ---\n")
	fmt.Printf("%-14s %12s %12s\n", "phase", "avg", "max")
	for _, n := range names {
		fmt.Printf("%-14s %11.6fs %11.6fs\n", n, vclock.Seconds(sums[n]/np), vclock.Seconds(maxes[n]))
	}
	fmt.Printf("pmi exchange path: %s\n", res.ExchangePath())
}

// printMetricTables prints the generic counter and histogram registries.
// All-zero counters and empty histograms are suppressed unless all is set
// (-metrics-all), which prints the complete registry so a run's full metric
// surface — including the zeros — is visible and diffable.
func printMetricTables(res *cluster.Result, all bool) {
	reg := res.Obs.Registry()
	if reg == nil {
		return
	}
	var cs []obs.CounterSnapshot
	for _, c := range reg.Counters() {
		if all || c.Value != 0 {
			cs = append(cs, c)
		}
	}
	if len(cs) > 0 {
		note := "zero rows suppressed"
		if all {
			note = "full registry"
		}
		fmt.Printf("\n--- counters (job totals; %s) ---\n", note)
		for _, c := range cs {
			fmt.Printf("%-28s %14d\n", c.Name, c.Value)
		}
	}
	var hs []obs.HistSnapshot
	for _, h := range reg.Hists() {
		if all || h.Count > 0 {
			hs = append(hs, h)
		}
	}
	if len(hs) > 0 {
		us := func(ns int64) float64 { return float64(ns) / 1e3 }
		fmt.Printf("\n--- latency histograms (virtual µs) ---\n")
		fmt.Printf("%-28s %10s %10s %10s %10s %10s\n", "histogram", "count", "p50", "p95", "p99", "max")
		for _, h := range hs {
			fmt.Printf("%-28s %10d %10.1f %10.1f %10.1f %10.1f\n",
				h.Name, h.Count, us(h.P50), us(h.P95), us(h.P99), us(h.Max))
		}
	}
}

// instLabel renders a gauge instance key: PE rank, HCA lid, fabric rail, or
// the job.
func instLabel(inst int) string {
	switch {
	case inst == obs.InstJob:
		return "job"
	case inst <= obs.InstRail(0):
		return fmt.Sprintf("rail%d", obs.InstRailIndex(inst))
	case inst < obs.InstJob:
		return fmt.Sprintf("hca%d", obs.InstLID(inst))
	default:
		return fmt.Sprintf("pe%d", inst)
	}
}

// printGaugeTable prints each virtual-time gauge's min/max/final levels —
// the -metrics summary of the series -timeseries-out exports in full.
func printGaugeTable(res *cluster.Result) {
	stats := res.Obs.Gauges().Stats()
	if len(stats) == 0 {
		return
	}
	fmt.Printf("\n--- gauges (level over virtual time) ---\n")
	fmt.Printf("%-28s %8s %14s %14s %14s\n", "gauge", "inst", "min", "max", "final")
	for _, g := range stats {
		fmt.Printf("%-28s %8s %14d %14d %14d\n", g.Name, instLabel(g.Inst), g.Min, g.Max, g.Final)
	}
}

// parsePEFaults parses a comma-separated list of "rank@seconds" schedules
// (virtual seconds) into PE fault entries, validating that every rank is in
// [0,np) and every time is non-negative. It returns an error rather than
// exiting so malformed specs produce one clear diagnostic (and so it can be
// unit-tested).
func parsePEFaults(flagName, s string, np int) ([]cluster.PEFault, error) {
	if s == "" {
		return nil, nil
	}
	var out []cluster.PEFault
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		rankStr, atStr, ok := strings.Cut(item, "@")
		if !ok {
			return nil, fmt.Errorf("-%s wants rank@seconds, got %q", flagName, item)
		}
		rank, err1 := strconv.Atoi(rankStr)
		at, err2 := strconv.ParseFloat(atStr, 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("-%s wants rank@seconds, got %q", flagName, item)
		}
		if rank < 0 || rank >= np {
			return nil, fmt.Errorf("-%s rank %d out of range [0,%d) in %q", flagName, rank, np, item)
		}
		if at < 0 {
			return nil, fmt.Errorf("-%s wants a non-negative time, got %q", flagName, item)
		}
		out = append(out, cluster.PEFault{Rank: rank, At: int64(at * float64(vclock.Second))})
	}
	return out, nil
}

// parsePortFaults parses a comma-separated list of "lid:rail@seconds" port
// failure schedules, validating the LID names a real node and the rail index
// is within the configured rail count.
func parsePortFaults(s string, rails, nodes int) ([]cluster.PortFault, error) {
	if s == "" {
		return nil, nil
	}
	var out []cluster.PortFault
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		spec, atStr, ok := strings.Cut(item, "@")
		lidStr, railStr, ok2 := strings.Cut(spec, ":")
		if !ok || !ok2 {
			return nil, fmt.Errorf("-fail-port wants lid:rail@seconds, got %q", item)
		}
		lid, err1 := strconv.Atoi(lidStr)
		rail, err2 := strconv.Atoi(railStr)
		at, err3 := strconv.ParseFloat(atStr, 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("-fail-port wants lid:rail@seconds, got %q", item)
		}
		if lid < 1 || lid > nodes {
			return nil, fmt.Errorf("-fail-port lid %d out of range [1,%d] in %q (LIDs number the nodes from 1)", lid, nodes, item)
		}
		if rail < 0 || rail >= rails {
			return nil, fmt.Errorf("-fail-port rail %d out of range [0,%d) in %q", rail, rails, item)
		}
		if at < 0 {
			return nil, fmt.Errorf("-fail-port wants a non-negative time, got %q", item)
		}
		out = append(out, cluster.PortFault{LID: uint16(lid), Rail: rail, At: int64(at * float64(vclock.Second))})
	}
	return out, nil
}

// parseRailFaults parses a comma-separated list of "rail@seconds" whole-rail
// failure schedules.
func parseRailFaults(s string, rails int) ([]cluster.RailFault, error) {
	if s == "" {
		return nil, nil
	}
	var out []cluster.RailFault
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		railStr, atStr, ok := strings.Cut(item, "@")
		if !ok {
			return nil, fmt.Errorf("-fail-rail wants rail@seconds, got %q", item)
		}
		rail, err1 := strconv.Atoi(railStr)
		at, err2 := strconv.ParseFloat(atStr, 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("-fail-rail wants rail@seconds, got %q", item)
		}
		if rail < 0 || rail >= rails {
			return nil, fmt.Errorf("-fail-rail rail %d out of range [0,%d) in %q", rail, rails, item)
		}
		if at < 0 {
			return nil, fmt.Errorf("-fail-rail wants a non-negative time, got %q", item)
		}
		out = append(out, cluster.RailFault{Rail: rail, At: int64(at * float64(vclock.Second))})
	}
	return out, nil
}

// parsePartitions parses a semicolon-separated list of partition windows,
// each "ranks:ranks@start[-heal]" with comma-separated rank lists and times
// in virtual seconds. An omitted heal means the partition never heals (the
// job exits with the partition code once the detector's patience runs out).
func parsePartitions(s string, np int) ([]cluster.PartitionFault, error) {
	if s == "" {
		return nil, nil
	}
	parseRanks := func(list, item string) ([]int, error) {
		var out []int
		for _, rs := range strings.Split(list, ",") {
			r, err := strconv.Atoi(strings.TrimSpace(rs))
			if err != nil {
				return nil, fmt.Errorf("-partition wants ranks:ranks@start[-heal], got %q", item)
			}
			if r < 0 || r >= np {
				return nil, fmt.Errorf("-partition rank %d out of range [0,%d) in %q", r, np, item)
			}
			out = append(out, r)
		}
		return out, nil
	}
	var out []cluster.PartitionFault
	for _, item := range strings.Split(s, ";") {
		item = strings.TrimSpace(item)
		spec, window, ok := strings.Cut(item, "@")
		aStr, bStr, ok2 := strings.Cut(spec, ":")
		if !ok || !ok2 {
			return nil, fmt.Errorf("-partition wants ranks:ranks@start[-heal], got %q", item)
		}
		a, err := parseRanks(aStr, item)
		if err != nil {
			return nil, err
		}
		b, err := parseRanks(bStr, item)
		if err != nil {
			return nil, err
		}
		startStr, healStr, hasHeal := strings.Cut(window, "-")
		start, err := strconv.ParseFloat(startStr, 64)
		if err != nil || start < 0 {
			return nil, fmt.Errorf("-partition wants a non-negative start time, got %q", item)
		}
		heal := int64(-1)
		if hasHeal {
			h, err := strconv.ParseFloat(healStr, 64)
			if err != nil || h < start {
				return nil, fmt.Errorf("-partition heal must not precede start in %q", item)
			}
			heal = int64(h * float64(vclock.Second))
		}
		out = append(out, cluster.PartitionFault{
			A: a, B: b, At: int64(start * float64(vclock.Second)), Heal: heal,
		})
	}
	return out, nil
}

// checkProb validates a probability flag is in [0,1].
func checkProb(flagName string, v float64) error {
	if v < 0 || v > 1 {
		return fmt.Errorf("-%s wants a probability in [0,1], got %v", flagName, v)
	}
	return nil
}

// checkBudget validates a resource-budget flag is non-negative (zero means
// unbounded, matching the ib.Limits zero-value convention).
func checkBudget(flagName string, v int64) error {
	if v < 0 {
		return fmt.Errorf("-%s wants a non-negative budget (0 = unbounded), got %d", flagName, v)
	}
	return nil
}

// fatalUsage prints one clear diagnostic and exits with the flag-error code.
func fatalUsage(err error) {
	fmt.Fprintf(os.Stderr, "oshrun: %v\n", err)
	os.Exit(2)
}

func main() {
	np := flag.Int("np", 16, "number of PEs")
	ppn := flag.Int("ppn", 8, "PEs per simulated node")
	conn := flag.String("conn", "ondemand", "connection mode: static | ondemand")
	app := flag.String("app", "hello", "application: hello | heat2d | ep | mg | bt | sp | graph500 | traffic")
	class := flag.String("class", "S", "NAS class: S | A | B")
	blockingPMI := flag.Bool("blocking-pmi", false, "use blocking Put-Fence-Get instead of PMIX_Iallgather")
	trace := flag.Int("trace", 0, "print the first N connection-lifecycle events (virtual-time ordered)")
	traceOut := flag.String("trace-out", "", "write the full multi-layer event trace to FILE in Chrome trace-event (Perfetto) JSON")
	jsonOut := flag.Bool("json", false, "emit the full job report (counters, histograms, startup phases) as JSON instead of text")
	metrics := flag.Bool("metrics", false, "collect latency histograms and generic counters and print them in the text report")
	metricsAll := flag.Bool("metrics-all", false, "like -metrics but print the full registry, including all-zero counters and empty histograms")
	timeseriesOut := flag.String("timeseries-out", "", "write the virtual-time gauge series (live QPs, pinned bytes, retained frames, credits, RQ occupancy, suspects) to FILE as CSV, or JSON when FILE ends in .json")
	footprint := flag.Bool("footprint", false, "take engine footprint censuses (per-subsystem memory/goroutine attribution reconciled against the measured heap) at startup boundaries and job end; prints the census table and adds the footprint section to -json")
	profileOut := flag.String("profile-out", "", "write Go pprof profiles of the simulator itself (cpu.pprof, heap.pprof, allocs.pprof) into DIR")
	memstatsEvery := flag.Int("memstats-every", 0, "sample the runtime (heap bytes, goroutines) into the engine.* gauge series every N milliseconds of real time — long-soak memory telemetry; implies -footprint")
	incidents := flag.Bool("incidents", false,"record the causal incident ledger and print the per-fault-kind detection/MTTR summary plus the injector reconciliation; exit 1 when reconciliation fails on a completed job")
	topology := flag.Bool("topology", false, "record the per-pair flow matrix and print the traffic heatmap, peer-degree table and QP waste attribution")
	qpCap := flag.Int("qp-cap", 0, "cap live RC queue pairs per HCA; idle connections are LRU-evicted (0 = unbounded; on-demand mode only)")
	qpBudget := flag.Int("qp-budget", 0, "hard per-HCA queue-pair budget (UD+RC) the adapter enforces; exhaustion triggers eviction+retry, admission rejection, and exit 125 when progress is impossible (0 = unbounded)")
	mrBudget := flag.Int64("mr-budget", 0, "hard per-HCA pinned-memory budget in bytes; refused heap registrations degrade to bounce-buffering (0 = unbounded)")
	rqDepth := flag.Int("rq-depth", 0, "per-RC-QP receive-queue depth; full queues NAK senders, who back off on credit windows (0 = unbounded)")
	allocFail := flag.String("alloc-fail", "", "inject allocation faults: kind:n[,kind:n...] with kind qp|mr; each adapter's n-th (1-based) allocation of that kind fails")

	faultSeed := flag.Int64("fault-seed", 1, "fault-injector RNG seed (deterministic per seed)")
	drop := flag.Float64("drop", 0, "probability a UD datagram is dropped")
	dup := flag.Float64("dup", 0, "probability a UD datagram is duplicated")
	flap := flag.Float64("flap", 0, "probability an RC operation suffers a link fault")
	slow := flag.Float64("slow", 0, "probability an operation charges extra virtual time (PE slowdown)")
	slowTime := flag.Float64("slow-time", 100, "slowdown charge in virtual microseconds (fabric and PMI)")
	corrupt := flag.Float64("corrupt", 0, "probability a UD datagram has one bit flipped in flight (checksummed control frames recover via retransmission)")
	rcCorrupt := flag.Float64("rc-corrupt", 0, "probability an RC payload has one bit flipped in flight (integrity trailers detect it; sends retransmit, RDMA replays over a reconnect)")
	tornWrites := flag.Float64("torn-writes", 0, "probability a link fault tears an RDMA write mid-transfer, leaving a partial payload at the target until the clean replay overwrites it")
	killPE := flag.String("kill-pe", "", "crash PEs at virtual times: rank@seconds[,rank@seconds...]")
	wedgePE := flag.String("wedge-pe", "", "wedge PEs (stop progress, keep fabric ACKs) at virtual times: rank@seconds[,...]")
	rails := flag.Int("rails", 1, "independent network rails (ports per HCA, each its own fault domain); >1 arms RC automatic path migration")
	failPort := flag.String("fail-port", "", "fail HCA ports at virtual times: lid:rail@seconds[,...]; the port goes dark permanently")
	failRail := flag.String("fail-rail", "", "fail whole rails (switch planes) at virtual times: rail@seconds[,...]")
	partition := flag.String("partition", "", "sever rank sets on every rail: ranks:ranks@start[-heal][;...] in virtual seconds; omitted heal = permanent (exit 126)")
	deadline := flag.Float64("deadline", 0, "virtual-time job deadline in seconds; the watchdog aborts the job past it (0 = none)")
	pmiSlow := flag.Float64("pmi-slow", 0, "probability a PMI op is served with inflated latency (slow launcher)")
	pmiDrop := flag.Float64("pmi-drop", 0, "probability a PMI op (or its reply) is dropped; the client retries with backoff")
	pmiCrash := flag.Float64("pmi-crash", -1, "crash the PMI server at this virtual time in seconds, losing un-fenced KVS entries (<0 = never)")
	pmiRecover := flag.Float64("pmi-recover", 0.25, "seconds after -pmi-crash before the server recovers (<0 = never recovers)")
	flag.Parse()

	if *np <= 0 {
		fatalUsage(fmt.Errorf("-np wants a positive PE count, got %d", *np))
	}
	if *ppn <= 0 {
		fatalUsage(fmt.Errorf("-ppn wants a positive per-node PE count, got %d", *ppn))
	}
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"drop", *drop}, {"dup", *dup}, {"flap", *flap}, {"slow", *slow},
		{"corrupt", *corrupt}, {"rc-corrupt", *rcCorrupt}, {"torn-writes", *tornWrites},
		{"pmi-slow", *pmiSlow}, {"pmi-drop", *pmiDrop},
	} {
		if err := checkProb(p.name, p.v); err != nil {
			fatalUsage(err)
		}
	}
	if *slowTime < 0 {
		fatalUsage(fmt.Errorf("-slow-time wants a non-negative duration, got %v", *slowTime))
	}
	if *deadline < 0 {
		fatalUsage(fmt.Errorf("-deadline wants a non-negative duration, got %v", *deadline))
	}
	if err := checkBudget("qp-budget", int64(*qpBudget)); err != nil {
		fatalUsage(err)
	}
	if err := checkBudget("mr-budget", *mrBudget); err != nil {
		fatalUsage(err)
	}
	if err := checkBudget("rq-depth", int64(*rqDepth)); err != nil {
		fatalUsage(err)
	}
	failQP, failMR, err := ib.ParseAllocFaults(*allocFail)
	if err != nil {
		fatalUsage(fmt.Errorf("-alloc-fail: %w", err))
	}

	mode := gasnet.OnDemand
	switch *conn {
	case "static":
		mode = gasnet.Static
	case "ondemand", "on-demand":
		mode = gasnet.OnDemand
	default:
		fmt.Fprintf(os.Stderr, "oshrun: unknown -conn %q\n", *conn)
		os.Exit(2)
	}
	cls := nas.Class((*class)[0])
	// In -json mode the report must be the only stdout output.
	quiet := *jsonOut

	var body func(c *shmem.Ctx)
	switch *app {
	case "hello":
		body = func(c *shmem.Ctx) {
			if c.Me() == 0 && !quiet {
				fmt.Printf("Hello World from %d PEs\n", c.NPEs())
			}
		}
	case "heat2d":
		body = func(c *shmem.Ctx) {
			r := heat2d.Run(c, heat2d.Params{NX: 64, NY: 8 * c.NPEs(), MaxIters: 50, CheckEvery: 10, Tol: 1e-4})
			if c.Me() == 0 && !quiet {
				fmt.Printf("heat2d: %d iters, residual %.3g, checksum %.6f\n", r.Iters, r.Residual, r.Checksum)
			}
		}
	case "ep":
		body = func(c *shmem.Ctx) {
			r := nas.EP(c, nas.EPParamsFor(cls))
			if c.Me() == 0 && !quiet {
				fmt.Printf("EP class %c: checksum %.6f\n", cls, r.Checksum)
			}
		}
	case "mg":
		body = func(c *shmem.Ctx) {
			r := nas.MG(c, nas.MGParamsFor(cls))
			if c.Me() == 0 && !quiet {
				fmt.Printf("MG class %c: checksum %.6f, residual %.3g\n", cls, r.Checksum, r.Residual)
			}
		}
	case "bt":
		body = func(c *shmem.Ctx) {
			r := nas.BT(c, cls)
			if c.Me() == 0 && !quiet {
				fmt.Printf("BT class %c: checksum %.6f\n", cls, r.Checksum)
			}
		}
	case "sp":
		body = func(c *shmem.Ctx) {
			r := nas.SP(c, cls)
			if c.Me() == 0 && !quiet {
				fmt.Printf("SP class %c: checksum %.6f\n", cls, r.Checksum)
			}
		}
	case "graph500":
		body = func(c *shmem.Ctx) {
			m := mpi.New(c.Conduit())
			r := graph500.Run(c, m, graph500.DefaultParams())
			if c.Me() == 0 && !quiet {
				fmt.Printf("graph500: reached %d, traversed %d, valid=%v\n",
					r.ReachedSum, r.TraversedSum, r.ValidationOK)
			}
		}
	case "traffic":
		// The resource-churn driver: skewed put/get/fetch-add streams with
		// a rotating hot set, the workload the churn soak runs under tight
		// budgets. Fixed parameters keep the digest reproducible; rank 0
		// prints its own digest so nightly runs diff clean unless the
		// data plane drifts.
		body = func(c *shmem.Ctx) {
			r := traffic.Run(c, traffic.Params{
				SlotsPerPE: 6, Ops: 300, Epochs: 3,
				Pattern: "zipf", ZipfS: 1.3,
				GetFrac: 0.2, AddFrac: 0.3, QuietEvery: 32,
				BulkEvery: 25, Seed: 77,
			})
			if c.Me() == 0 && !quiet {
				fmt.Printf("traffic: digest %016x, %d puts %d gets %d adds, %d distinct peers\n",
					r.Digest, r.Puts, r.Gets, r.Adds, r.DistinctPeers)
			}
		}
	default:
		fmt.Fprintf(os.Stderr, "oshrun: unknown -app %q\n", *app)
		os.Exit(2)
	}

	var faults *ib.FaultInjector
	if *drop > 0 || *dup > 0 || *flap > 0 || *slow > 0 || *corrupt > 0 ||
		*rcCorrupt > 0 || *tornWrites > 0 {
		faults = ib.NewFaultInjector(*faultSeed)
		faults.DropProb = *drop
		faults.DupProb = *dup
		faults.FlapProb = *flap
		faults.SlowProb = *slow
		faults.SlowTime = int64(*slowTime * float64(vclock.Microsecond))
		faults.CorruptProb = *corrupt
		faults.RCCorruptProb = *rcCorrupt
		faults.TornWriteProb = *tornWrites
	}
	var pmiFaults *pmi.FaultInjector
	if *pmiSlow > 0 || *pmiDrop > 0 || *pmiCrash >= 0 {
		pmiFaults = pmi.NewFaultInjector(*faultSeed)
		pmiFaults.SlowProb = *pmiSlow
		pmiFaults.SlowTime = int64(*slowTime * float64(vclock.Microsecond))
		pmiFaults.DropProb = *pmiDrop
		if *pmiCrash >= 0 {
			recoverAfter := int64(-1)
			if *pmiRecover >= 0 {
				recoverAfter = int64(*pmiRecover * float64(vclock.Second))
			}
			pmiFaults.CrashServer(int64(*pmiCrash*float64(vclock.Second)), recoverAfter)
		}
	}

	killPEs, err := parsePEFaults("kill-pe", *killPE, *np)
	if err != nil {
		fatalUsage(err)
	}
	wedgePEs, err := parsePEFaults("wedge-pe", *wedgePE, *np)
	if err != nil {
		fatalUsage(err)
	}
	if *rails < 1 {
		fatalUsage(fmt.Errorf("-rails wants at least one rail, got %d", *rails))
	}
	nodes := (*np + *ppn - 1) / *ppn
	failPorts, err := parsePortFaults(*failPort, *rails, nodes)
	if err != nil {
		fatalUsage(err)
	}
	failRails, err := parseRailFaults(*failRail, *rails)
	if err != nil {
		fatalUsage(err)
	}
	partitions, err := parsePartitions(*partition, *np)
	if err != nil {
		fatalUsage(err)
	}

	wantMetrics := *jsonOut || *metrics || *metricsAll
	wantFootprint := *footprint || *memstatsEvery > 0
	// Any configured fault source makes the incident ledger worth carrying in
	// the JSON report; the text path keeps it opt-in via -incidents.
	anyFaults := faults != nil || pmiFaults != nil ||
		len(killPEs)+len(wedgePEs) > 0 || len(failQP)+len(failMR) > 0 ||
		len(failPorts)+len(failRails)+len(partitions) > 0
	cfg := cluster.Config{
		NP: *np, PPN: *ppn, Mode: mode, BlockingPMI: *blockingPMI,
		HeapSize: 8 << 20, Trace: *trace > 0, MaxLiveRC: *qpCap,
		QPBudget: *qpBudget, MRBudget: *mrBudget, RQDepth: *rqDepth,
		FailQPAllocs: failQP,
		FailMRAllocs: failMR,
		Faults:       faults,
		PMIFaults:    pmiFaults,
		KillPEs:      killPEs,
		WedgePEs:     wedgePEs,
		Rails:        *rails,
		FailPorts:    failPorts,
		FailRails:    failRails,
		Partitions:   partitions,
		Deadline:      int64(*deadline * float64(vclock.Second)),
		MemstatsEvery: time.Duration(*memstatsEvery) * time.Millisecond,
		Obs: obs.Config{
			Events:  *trace > 0 || *traceOut != "",
			Metrics: wantMetrics,
			Flows:   *topology || *jsonOut,
			Gauges:  wantMetrics || *timeseriesOut != "" || wantFootprint,
			// Footprint stays strictly opt-in (never implied by -json or
			// -metrics): census snapshots read wall-clock runtime state, so
			// the footprint section and engine.* gauges are not
			// run-to-run-deterministic and must not leak into report or
			// time-series diffs that are.
			Footprint: wantFootprint,
			Incidents: *incidents || (*jsonOut && anyFaults),
		},
	}

	// -profile-out profiles the simulator itself (not the simulation): CPU
	// over the whole run, heap and allocation profiles at job end. The
	// census answers "which subsystem owns the bytes"; the pprof artifacts
	// answer "which call stacks allocated them".
	if *profileOut != "" {
		if err := os.MkdirAll(*profileOut, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "oshrun:", err)
			os.Exit(1)
		}
		cf, err := os.Create(filepath.Join(*profileOut, "cpu.pprof"))
		if err != nil {
			fmt.Fprintln(os.Stderr, "oshrun:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(cf); err != nil {
			fmt.Fprintln(os.Stderr, "oshrun: cpu profile:", err)
			os.Exit(1)
		}
		defer cf.Close()
	}

	res, err := cluster.Run(cfg, body)
	if err != nil {
		fmt.Fprintln(os.Stderr, "oshrun:", err)
		os.Exit(1)
	}

	if *profileOut != "" {
		pprof.StopCPUProfile()
		writeProfile := func(name, profile string, gc bool) {
			f, err := os.Create(filepath.Join(*profileOut, name))
			if err != nil {
				fmt.Fprintln(os.Stderr, "oshrun:", err)
				os.Exit(1)
			}
			if gc {
				runtime.GC() // heap.pprof should show retained bytes, not float
			}
			if err := pprof.Lookup(profile).WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "oshrun: writing", name+":", err)
				os.Exit(1)
			}
			f.Close()
		}
		writeProfile("heap.pprof", "heap", true)
		writeProfile("allocs.pprof", "allocs", false)
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "oshrun:", err)
			os.Exit(1)
		}
		if err := res.Obs.WritePerfetto(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "oshrun: writing trace:", err)
			os.Exit(1)
		}
		if n := res.Obs.Dropped(); n > 0 {
			fmt.Fprintf(os.Stderr, "oshrun: warning: %d events dropped to ring overflow; rerun with a larger ring\n", n)
		}
	}

	if *timeseriesOut != "" {
		f, err := os.Create(*timeseriesOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "oshrun:", err)
			os.Exit(1)
		}
		series := res.Obs.Gauges().Series(obs.DefaultGaugeTick)
		if strings.HasSuffix(*timeseriesOut, ".json") {
			err = obs.WriteGaugeJSON(f, series)
		} else {
			err = obs.WriteGaugeCSV(f, series)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "oshrun: writing timeseries:", err)
			os.Exit(1)
		}
	}

	if *jsonOut {
		rep := cluster.BuildReport(res)
		if err := rep.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "oshrun:", err)
			os.Exit(1)
		}
		exitAbort(res)
		if *incidents && rep.Incidents != nil && !rep.Incidents.Reconciled {
			os.Exit(1)
		}
		return
	}

	if *trace > 0 {
		fmt.Printf("\n--- connection trace (first %d of %d events) ---\n", min(*trace, len(res.Trace)), len(res.Trace))
		for i, e := range res.Trace {
			if i >= *trace {
				break
			}
			fmt.Printf("%12.6fs  pe %4d  %-20s peer %d\n", vclock.Seconds(e.VT), e.Rank, e.Kind, e.Peer)
		}
	}

	b := res.PEs[0].Breakdown
	fmt.Printf("\n--- job report (%s, %d PEs, %d ppn) ---\n", mode, *np, *ppn)
	fmt.Printf("start_pes avg:      %8.3fs  (conn %.3fs, pmi %.3fs, memreg %.3fs, shmem %.3fs, other %.3fs)\n",
		vclock.Seconds(res.InitAvg), vclock.Seconds(b.ConnectionSetup), vclock.Seconds(b.PMIExchange),
		vclock.Seconds(b.MemoryReg), vclock.Seconds(b.SharedMemSetup), vclock.Seconds(b.Other))
	fmt.Printf("job time (virtual): %8.3fs\n", vclock.Seconds(res.JobVT))
	fmt.Printf("avg RC endpoints/PE: %7.1f   avg peers/PE: %.1f   (simulated in %v real)\n",
		res.AvgEndpoints(), res.AvgPeers(), res.Wall.Round(1e6))

	// One unified failure/resilience table: link-level recovery and
	// PE-failure counters, all-zero rows suppressed.
	if c := res.Counters(); c != (cluster.Counters{}) {
		rows := []struct {
			label string
			v     int
		}{
			{"link faults", c.LinkFaults}, {"pe failures", c.PEFailures},
			{"reconnects", c.Reconnects}, {"heartbeats sent", c.HeartbeatsSent},
			{"evictions", c.Evictions}, {"false suspicions", c.FalseSuspicions},
			{"retransmits", c.Retransmits}, {"aborts propagated", c.AbortsPropagated},
			{"pmi retries", c.PMIRetries}, {"pmi timeouts", c.PMITimeouts},
			{"fallback exchanges", c.FallbackExchanges}, {"corrupt frames", c.CorruptFrames},
			{"credit stalls", c.CreditStalls}, {"rnr naks", c.RNRNaks},
			{"alloc failures", c.AllocFailures}, {"bounce fallbacks", c.BounceFallbacks},
			{"admission rejects", c.AdmissionRejects},
			{"rc corrupt frames", c.RCCorruptFrames}, {"torn writes", c.TornWrites},
			{"dup ops suppressed", c.DupOpsSuppressed}, {"integrity retransmits", c.IntegrityRetransmits},
			{"path migrations", c.PathMigrations}, {"rail failovers", c.RailFailovers},
			{"partition suspends", c.PartitionSuspensions}, {"partition heals", c.PartitionHeals},
		}
		fmt.Printf("\n--- resilience counters (all PEs) ---\n")
		col := 0
		for _, r := range rows {
			if r.v == 0 {
				continue
			}
			fmt.Printf("%-18s %8d    ", r.label, r.v)
			if col++; col%2 == 0 {
				fmt.Println()
			}
		}
		if col%2 != 0 {
			fmt.Println()
		}
	}

	if res.Obs != nil {
		printPhaseTable(res)
		printMetricTables(res, *metricsAll)
		printGaugeTable(res)
	}

	if res.Footprint != nil {
		fmt.Println()
		res.Footprint.WriteText(os.Stdout)
	}

	reconFailed := false
	if *incidents {
		fmt.Printf("\n--- incident ledger ---\n")
		ir := cluster.BuildIncidentReport(res)
		ir.WriteText(os.Stdout)
		// An aborted job is allowed to leave incidents unreconciled (the
		// abort tore recovery down mid-flight); a completed one is not.
		reconFailed = !ir.Reconciled && !res.Aborted
	}

	if *topology {
		fmt.Printf("\n--- communication topology ---\n")
		cluster.WriteTopologyText(os.Stdout, res)
	}

	if res.Aborted {
		fmt.Printf("\n--- job aborted ---\n%s\n", res.AbortReason)
		if res.Dump != "" {
			fmt.Printf("\n--- watchdog state dump ---\n%s", res.Dump)
		}
		maxCode := 1
		fmt.Printf("per-PE exit codes:\n")
		for _, p := range res.PEs {
			fmt.Printf("  pe %4d: exit %d\n", p.Rank, p.ExitCode)
			if p.ExitCode > maxCode {
				maxCode = p.ExitCode
			}
		}
		os.Exit(maxCode)
	}
	if reconFailed {
		os.Exit(1)
	}
}
