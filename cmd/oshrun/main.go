// Command oshrun launches one application kernel on the simulated cluster,
// like `oshrun -np N ./app` launches an OpenSHMEM program:
//
//	oshrun -np 64 -ppn 8 -conn ondemand -app heat2d
//
// Applications: hello, heat2d, ep, mg, bt, sp, graph500.
// It reports the start_pes breakdown, total job time (virtual), and the
// resource usage counters the paper studies.
package main

import (
	"flag"
	"fmt"
	"os"

	"goshmem/internal/apps/graph500"
	"goshmem/internal/apps/heat2d"
	"goshmem/internal/apps/nas"
	"goshmem/internal/cluster"
	"goshmem/internal/gasnet"
	"goshmem/internal/mpi"
	"goshmem/internal/shmem"
	"goshmem/internal/vclock"
)

func main() {
	np := flag.Int("np", 16, "number of PEs")
	ppn := flag.Int("ppn", 8, "PEs per simulated node")
	conn := flag.String("conn", "ondemand", "connection mode: static | ondemand")
	app := flag.String("app", "hello", "application: hello | heat2d | ep | mg | bt | sp | graph500")
	class := flag.String("class", "S", "NAS class: S | A | B")
	blockingPMI := flag.Bool("blocking-pmi", false, "use blocking Put-Fence-Get instead of PMIX_Iallgather")
	trace := flag.Int("trace", 0, "print the first N connection-lifecycle events (virtual-time ordered)")
	qpCap := flag.Int("qp-cap", 0, "cap live RC queue pairs per HCA; idle connections are LRU-evicted (0 = unbounded; on-demand mode only)")
	flag.Parse()

	mode := gasnet.OnDemand
	switch *conn {
	case "static":
		mode = gasnet.Static
	case "ondemand", "on-demand":
		mode = gasnet.OnDemand
	default:
		fmt.Fprintf(os.Stderr, "oshrun: unknown -conn %q\n", *conn)
		os.Exit(2)
	}
	cls := nas.Class((*class)[0])

	var body func(c *shmem.Ctx)
	switch *app {
	case "hello":
		body = func(c *shmem.Ctx) {
			if c.Me() == 0 {
				fmt.Printf("Hello World from %d PEs\n", c.NPEs())
			}
		}
	case "heat2d":
		body = func(c *shmem.Ctx) {
			r := heat2d.Run(c, heat2d.Params{NX: 64, NY: 8 * c.NPEs(), MaxIters: 50, CheckEvery: 10, Tol: 1e-4})
			if c.Me() == 0 {
				fmt.Printf("heat2d: %d iters, residual %.3g, checksum %.6f\n", r.Iters, r.Residual, r.Checksum)
			}
		}
	case "ep":
		body = func(c *shmem.Ctx) {
			r := nas.EP(c, nas.EPParamsFor(cls))
			if c.Me() == 0 {
				fmt.Printf("EP class %c: checksum %.6f\n", cls, r.Checksum)
			}
		}
	case "mg":
		body = func(c *shmem.Ctx) {
			r := nas.MG(c, nas.MGParamsFor(cls))
			if c.Me() == 0 {
				fmt.Printf("MG class %c: checksum %.6f, residual %.3g\n", cls, r.Checksum, r.Residual)
			}
		}
	case "bt":
		body = func(c *shmem.Ctx) {
			r := nas.BT(c, cls)
			if c.Me() == 0 {
				fmt.Printf("BT class %c: checksum %.6f\n", cls, r.Checksum)
			}
		}
	case "sp":
		body = func(c *shmem.Ctx) {
			r := nas.SP(c, cls)
			if c.Me() == 0 {
				fmt.Printf("SP class %c: checksum %.6f\n", cls, r.Checksum)
			}
		}
	case "graph500":
		body = func(c *shmem.Ctx) {
			m := mpi.New(c.Conduit())
			r := graph500.Run(c, m, graph500.DefaultParams())
			if c.Me() == 0 {
				fmt.Printf("graph500: reached %d, traversed %d, valid=%v\n",
					r.ReachedSum, r.TraversedSum, r.ValidationOK)
			}
		}
	default:
		fmt.Fprintf(os.Stderr, "oshrun: unknown -app %q\n", *app)
		os.Exit(2)
	}

	res, err := cluster.Run(cluster.Config{
		NP: *np, PPN: *ppn, Mode: mode, BlockingPMI: *blockingPMI,
		HeapSize: 8 << 20, Trace: *trace > 0, MaxLiveRC: *qpCap,
	}, body)
	if err != nil {
		fmt.Fprintln(os.Stderr, "oshrun:", err)
		os.Exit(1)
	}

	if *trace > 0 {
		fmt.Printf("\n--- connection trace (first %d of %d events) ---\n", min(*trace, len(res.Trace)), len(res.Trace))
		for i, e := range res.Trace {
			if i >= *trace {
				break
			}
			fmt.Printf("%12.6fs  pe %4d  %-20s peer %d\n", vclock.Seconds(e.VT), e.Rank, e.Kind, e.Peer)
		}
	}

	b := res.PEs[0].Breakdown
	fmt.Printf("\n--- job report (%s, %d PEs, %d ppn) ---\n", mode, *np, *ppn)
	fmt.Printf("start_pes avg:      %8.3fs  (conn %.3fs, pmi %.3fs, memreg %.3fs, shmem %.3fs, other %.3fs)\n",
		vclock.Seconds(res.InitAvg), vclock.Seconds(b.ConnectionSetup), vclock.Seconds(b.PMIExchange),
		vclock.Seconds(b.MemoryReg), vclock.Seconds(b.SharedMemSetup), vclock.Seconds(b.Other))
	fmt.Printf("job time (virtual): %8.3fs\n", vclock.Seconds(res.JobVT))
	fmt.Printf("avg RC endpoints/PE: %7.1f   avg peers/PE: %.1f   (simulated in %v real)\n",
		res.AvgEndpoints(), res.AvgPeers(), res.Wall.Round(1e6))
	if lf, rc, ev, rt := res.TotalLinkFaults(), res.TotalReconnects(), res.TotalEvictions(), res.TotalRetransmits(); lf+rc+ev+rt > 0 {
		fmt.Printf("resilience:          %d link faults, %d reconnects, %d evictions, %d retransmits\n", lf, rc, ev, rt)
	}
}
