package main

import (
	"strings"
	"testing"

	"goshmem/internal/ib"
)

func TestParsePEFaultsValid(t *testing.T) {
	fs, err := parsePEFaults("kill-pe", "0@0.5, 3@1.25,7@0", 8)
	if err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if len(fs) != 3 {
		t.Fatalf("got %d faults, want 3", len(fs))
	}
	if fs[0].Rank != 0 || fs[0].At != 500_000_000 {
		t.Fatalf("fault[0] = %+v", fs[0])
	}
	if fs[1].Rank != 3 || fs[1].At != 1_250_000_000 {
		t.Fatalf("fault[1] = %+v", fs[1])
	}
	if fs[2].Rank != 7 || fs[2].At != 0 {
		t.Fatalf("fault[2] = %+v", fs[2])
	}
}

func TestParsePEFaultsEmpty(t *testing.T) {
	fs, err := parsePEFaults("kill-pe", "", 8)
	if err != nil || fs != nil {
		t.Fatalf("empty spec = (%v, %v), want (nil, nil)", fs, err)
	}
}

func TestParsePEFaultsErrors(t *testing.T) {
	cases := []struct {
		spec string
		np   int
		want string // substring of the diagnostic
	}{
		{"garbage", 8, "rank@seconds"},
		{"3", 8, "rank@seconds"},
		{"x@0.5", 8, "rank@seconds"},
		{"3@abc", 8, "rank@seconds"},
		{"8@0.5", 8, "out of range"},
		{"-1@0.5", 8, "out of range"},
		{"3@-0.5", 8, "non-negative time"},
		{"0@0.1,9@0.2", 8, "out of range"}, // error in later item still caught
	}
	for _, tc := range cases {
		_, err := parsePEFaults("wedge-pe", tc.spec, tc.np)
		if err == nil {
			t.Errorf("spec %q: expected error", tc.spec)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("spec %q: error %q does not mention %q", tc.spec, err, tc.want)
		}
		if !strings.Contains(err.Error(), "wedge-pe") {
			t.Errorf("spec %q: error %q does not name the flag", tc.spec, err)
		}
	}
}

func TestCheckBudget(t *testing.T) {
	for _, ok := range []int64{0, 1, 1 << 30} {
		if err := checkBudget("qp-budget", ok); err != nil {
			t.Errorf("checkBudget(%d) = %v, want nil", ok, err)
		}
	}
	for _, bad := range []int64{-1, -1 << 20} {
		err := checkBudget("mr-budget", bad)
		if err == nil {
			t.Errorf("checkBudget(%d) = nil, want error", bad)
			continue
		}
		if !strings.Contains(err.Error(), "mr-budget") {
			t.Errorf("checkBudget(%d): error %q does not name the flag", bad, err)
		}
	}
}

func TestParseAllocFaultsValid(t *testing.T) {
	qp, mr, err := ib.ParseAllocFaults("qp:3, mr:2,qp:1")
	if err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if len(qp) != 2 || qp[0] != 3 || qp[1] != 1 {
		t.Fatalf("qp schedule = %v, want [3 1]", qp)
	}
	if len(mr) != 1 || mr[0] != 2 {
		t.Fatalf("mr schedule = %v, want [2]", mr)
	}
}

func TestParseAllocFaultsEmpty(t *testing.T) {
	qp, mr, err := ib.ParseAllocFaults("")
	if qp != nil || mr != nil || err != nil {
		t.Fatalf("empty spec = (%v, %v, %v), want all nil", qp, mr, err)
	}
}

func TestParseAllocFaultsErrors(t *testing.T) {
	cases := []struct {
		spec string
		want string // substring of the diagnostic
	}{
		{"garbage", "kind:n"},
		{"qp", "kind:n"},
		{"qp:0", "positive integer"},
		{"qp:-2", "positive integer"},
		{"mr:abc", "positive integer"},
		{"cq:3", "unknown kind"},
		{"qp:1,mr:x", "positive integer"}, // error in later item still caught
	}
	for _, tc := range cases {
		_, _, err := ib.ParseAllocFaults(tc.spec)
		if err == nil {
			t.Errorf("spec %q: expected error", tc.spec)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("spec %q: error %q does not mention %q", tc.spec, err, tc.want)
		}
	}
}

func TestCheckProb(t *testing.T) {
	for _, ok := range []float64{0, 0.5, 1} {
		if err := checkProb("drop", ok); err != nil {
			t.Errorf("checkProb(%v) = %v, want nil", ok, err)
		}
	}
	for _, bad := range []float64{-0.01, 1.01, 42} {
		err := checkProb("corrupt", bad)
		if err == nil {
			t.Errorf("checkProb(%v) = nil, want error", bad)
			continue
		}
		if !strings.Contains(err.Error(), "corrupt") {
			t.Errorf("checkProb(%v): error %q does not name the flag", bad, err)
		}
	}
}
