// Command bench records the simulator's performance trajectory: a small,
// fixed suite of startup, latency and phase measurements written as one
// machine-readable JSON document. `make bench` runs it and writes
// BENCH_<date>.json; nightly CI uploads the file so regressions in the
// modeled numbers (and in the wall cost of producing them) show up as a
// diffable series over time.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"goshmem/internal/bench"
	"goshmem/internal/gasnet"
)

// SchemaVersion identifies the BENCH_<date>.json document shape so the
// trajectory tooling can evolve with it. Bump on any breaking change.
const SchemaVersion = 1

// doc is the perf-trajectory document.
type doc struct {
	SchemaVersion int    `json:"schema_version"`
	Date          string `json:"date"`
	GoVersion     string `json:"go_version"`
	GOOS          string `json:"goos"`
	GOARCH        string `json:"goarch"`

	// WallNS is the wall-clock cost of producing the whole suite — the
	// simulator's own speed, as opposed to the virtual-time numbers below.
	WallNS int64 `json:"wall_ns"`

	// Startup is Figure 5(a) at reduced sizes: start_pes and Hello World
	// virtual seconds for both connection modes.
	Startup []bench.StartupPoint `json:"startup"`

	// Latency is Figure 6 at reduced sizes: put/get virtual latency (ns per
	// op) for both modes.
	Latency []bench.LatencyPoint `json:"latency_put_get"`

	// CreditStall is the resource-plane backpressure suite: burst
	// put-with-signal latency (virtual ns per op) and the stall/NAK
	// counters as the receive-queue depth shrinks; depth 0 is the
	// unbounded baseline.
	CreditStall []bench.CreditPoint `json:"latency_credit_stall"`

	// PhasesStatic / PhasesOnDemand are the obs-plane startup-phase
	// breakdowns (virtual seconds per phase, averaged across PEs).
	PhasesStatic   []bench.PhasePoint `json:"phases_static"`
	PhasesOnDemand []bench.PhasePoint `json:"phases_ondemand"`

	// Footprint is the engine scaling sweep: census-measured bytes-per-PE,
	// goroutines-per-PE and startup time versus np in both connection
	// modes — the trajectory ROADMAP item 1's refactor will be judged
	// against. Warn-gated (not fail) by -check.
	Footprint []bench.FootprintPoint `json:"footprint"`
}

// regressPct is the latency-regression gate -check enforces: any put/get or
// credit-stall point more than this much slower than the baseline fails CI.
// The footprint suite shares the threshold but only warns — the suite is
// new, and memory noise across Go releases needs a trajectory before a hard
// gate is honest.
const regressPct = 10.0

// footprintSizes is the fixed np sweep of the footprint suite.
var footprintSizes = []int{64, 256, 1024, 4096}

// loadBaseline decodes the lexically-latest BENCH_*.json in the current
// directory other than the file this run just wrote — with date-stamped
// names, lexical order is chronological order, so this is the most recent
// committed trajectory point.
func loadBaseline(exclude string) (*doc, string) {
	matches, _ := filepath.Glob("BENCH_*.json")
	sort.Strings(matches)
	for i := len(matches) - 1; i >= 0; i-- {
		p := matches[i]
		if filepath.Clean(p) == filepath.Clean(exclude) {
			continue
		}
		b, err := os.ReadFile(p)
		if err != nil {
			continue
		}
		var d doc
		if err := json.Unmarshal(b, &d); err != nil {
			fmt.Fprintf(os.Stderr, "bench: skipping unreadable baseline %s: %v\n", p, err)
			continue
		}
		return &d, p
	}
	return nil, ""
}

// pctDelta is the relative change in percent; a zero baseline reports 0 so
// newly-added points never fail the gate.
func pctDelta(old, cur float64) float64 {
	if old == 0 {
		return 0
	}
	return (cur - old) / old * 100
}

// reportDeltas prints the per-suite comparison against the baseline and
// reports whether any latency suite regressed past the gate. Startup deltas
// are informational: the on-demand design exists to trade startup time, and
// its numbers move deliberately; the latency suites are the guarded ones.
func reportDeltas(base, cur *doc, basePath string) bool {
	fmt.Printf("\ndeltas vs %s (%s):\n", basePath, base.Date)
	regressed := false
	var failedSuites, warnedSuites []string
	noted := func(list []string, s string) bool {
		for _, x := range list {
			if x == s {
				return true
			}
		}
		return false
	}
	row := func(suite, point, metric string, old, new float64, gated bool) {
		d := pctDelta(old, new)
		verdict := ""
		if gated && d > regressPct {
			verdict = "  REGRESSION"
			regressed = true
			if !noted(failedSuites, suite) {
				failedSuites = append(failedSuites, suite)
			}
		}
		fmt.Printf("  %-20s %-10s %-12s %14.1f -> %14.1f  %+7.1f%%%s\n",
			suite, point, metric, old, new, d, verdict)
	}
	// warnRow is the footprint suite's gate: past-threshold growth is called
	// out loudly but does not fail the run (see regressPct doc).
	warnRow := func(suite, point, metric string, old, new float64) {
		d := pctDelta(old, new)
		verdict := ""
		if d > regressPct {
			verdict = "  WARN"
			if !noted(warnedSuites, suite) {
				warnedSuites = append(warnedSuites, suite)
			}
		}
		fmt.Printf("  %-20s %-10s %-12s %14.1f -> %14.1f  %+7.1f%%%s\n",
			suite, point, metric, old, new, d, verdict)
	}

	startupByN := map[int]bench.StartupPoint{}
	for _, p := range base.Startup {
		startupByN[p.N] = p
	}
	for _, p := range cur.Startup {
		b, ok := startupByN[p.N]
		if !ok {
			continue
		}
		id := fmt.Sprintf("np=%d", p.N)
		row("startup", id, "init_od_s", b.InitOnDemand, p.InitOnDemand, false)
		row("startup", id, "hello_od_s", b.HelloOnDemand, p.HelloOnDemand, false)
	}

	latBySize := map[int]bench.LatencyPoint{}
	for _, p := range base.Latency {
		latBySize[p.Size] = p
	}
	for _, p := range cur.Latency {
		b, ok := latBySize[p.Size]
		if !ok {
			continue
		}
		id := fmt.Sprintf("size=%d", p.Size)
		row("latency_put_get", id, "put_static", b.PutStatic, p.PutStatic, true)
		row("latency_put_get", id, "put_od", b.PutOD, p.PutOD, true)
		row("latency_put_get", id, "get_static", b.GetStatic, p.GetStatic, true)
		row("latency_put_get", id, "get_od", b.GetOD, p.GetOD, true)
	}

	creditByDepth := map[int]bench.CreditPoint{}
	for _, p := range base.CreditStall {
		creditByDepth[p.RQDepth] = p
	}
	for _, p := range cur.CreditStall {
		b, ok := creditByDepth[p.RQDepth]
		if !ok {
			continue
		}
		id := fmt.Sprintf("depth=%d", p.RQDepth)
		row("latency_credit_stall", id, "burst_put_ns", b.BurstPutNS, p.BurstPutNS, true)
	}

	fpByKey := map[string]bench.FootprintPoint{}
	for _, p := range base.Footprint {
		fpByKey[fmt.Sprintf("%s/%d", p.Mode, p.N)] = p
	}
	for _, p := range cur.Footprint {
		b, ok := fpByKey[fmt.Sprintf("%s/%d", p.Mode, p.N)]
		if !ok {
			continue
		}
		id := fmt.Sprintf("%s np=%d", p.Mode, p.N)
		warnRow("footprint", id, "bytes_per_pe", b.BytesPerPE, p.BytesPerPE)
		warnRow("footprint", id, "startup_s", b.StartupS, p.StartupS)
	}

	row("wall", "suite", "wall_ns", float64(base.WallNS), float64(cur.WallNS), false)
	if len(failedSuites) > 0 {
		fmt.Printf("  regressed suites: %v\n", failedSuites)
	}
	if len(warnedSuites) > 0 {
		fmt.Printf("  warned suites (>%.0f%%, not failing): %v\n", regressPct, warnedSuites)
	}
	return regressed
}

func main() {
	out := flag.String("o", "", "output file (default BENCH_<yyyy-mm-dd>.json)")
	check := flag.Bool("check", false, "compare against the most recent committed BENCH_*.json and exit nonzero when a latency suite regresses more than 10% (footprint-suite growth warns only)")
	fpMaxNP := flag.Int("footprint-max-np", 4096, "cap the footprint sweep at this np (the full sweep's static np=4096 point builds ~8.4M connections; CI runners cap lower)")
	fpCSV := flag.String("footprint-csv", "", "also write the footprint sweep as CSV to FILE (the nightly artifact)")
	flag.Parse()

	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", time.Now().UTC().Format("2006-01-02"))
	}

	d := doc{
		SchemaVersion: SchemaVersion,
		Date:          time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
	}

	die := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
	}

	t0 := time.Now()

	var err error
	d.Startup, err = bench.Startup([]int{64, 128, 256}, 8, 256)
	die(err)

	d.Latency, err = bench.PutGetLatency([]int{8, 4096, 65536}, 50)
	die(err)

	d.CreditStall, err = bench.CreditStallLatency([]int{0, 16, 4, 1}, 32, 20)
	die(err)

	d.PhasesStatic, err = bench.PhaseBreakdown(gasnet.Static, []int{64, 128}, 8)
	die(err)
	d.PhasesOnDemand, err = bench.PhaseBreakdown(gasnet.OnDemand, []int{64, 128}, 8)
	die(err)

	// Footprint sweep. A capped run must be loud about what it dropped: a
	// silently-truncated sweep reads as "covered the full range" in the
	// committed trajectory.
	fpSizes := footprintSizes
	if *fpMaxNP > 0 {
		var kept, dropped []int
		for _, n := range footprintSizes {
			if n > *fpMaxNP {
				dropped = append(dropped, n)
			} else {
				kept = append(kept, n)
			}
		}
		if len(dropped) > 0 {
			fmt.Fprintf(os.Stderr, "bench: footprint sweep capped at np=%d; dropping sizes %v\n", *fpMaxNP, dropped)
		}
		fpSizes = kept
	}
	fpStatic, err := bench.FootprintSweep(gasnet.Static, fpSizes, 16, 0)
	die(err)
	fpOD, err := bench.FootprintSweep(gasnet.OnDemand, fpSizes, 16, 0)
	die(err)
	d.Footprint = append(fpStatic, fpOD...)
	if *fpCSV != "" {
		cf, err := os.Create(*fpCSV)
		die(err)
		die(bench.WriteFootprintCSV(cf, d.Footprint))
		die(cf.Close())
		fmt.Printf("wrote %s\n", *fpCSV)
	}

	d.WallNS = time.Since(t0).Nanoseconds()

	f, err := os.Create(path)
	die(err)
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	die(enc.Encode(&d))
	die(f.Close())
	fmt.Printf("wrote %s (suite wall time %.1fs)\n", path, float64(d.WallNS)/1e9)

	base, basePath := loadBaseline(path)
	if base == nil {
		if *check {
			// A -check run with nothing to check against must be loud: a CI
			// lane that silently passes because the baseline artifact went
			// missing would mask every future regression. Exit 0 so a fresh
			// checkout can still bootstrap its first baseline.
			fmt.Fprintf(os.Stderr, "bench: WARNING: -check requested but no prior BENCH_*.json baseline exists; "+
				"regression gate NOT applied (wrote %s as the new baseline)\n", path)
			return
		}
		fmt.Printf("no prior BENCH_*.json baseline found; skipping delta report\n")
		return
	}
	regressed := reportDeltas(base, &d, basePath)
	if regressed && *check {
		fmt.Fprintf(os.Stderr, "bench: latency regression past %.0f%% vs %s\n", regressPct, basePath)
		os.Exit(1)
	}
}
