// Command bench records the simulator's performance trajectory: a small,
// fixed suite of startup, latency and phase measurements written as one
// machine-readable JSON document. `make bench` runs it and writes
// BENCH_<date>.json; nightly CI uploads the file so regressions in the
// modeled numbers (and in the wall cost of producing them) show up as a
// diffable series over time.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"goshmem/internal/bench"
	"goshmem/internal/gasnet"
)

// SchemaVersion identifies the BENCH_<date>.json document shape so the
// trajectory tooling can evolve with it. Bump on any breaking change.
const SchemaVersion = 1

// doc is the perf-trajectory document.
type doc struct {
	SchemaVersion int    `json:"schema_version"`
	Date          string `json:"date"`
	GoVersion     string `json:"go_version"`
	GOOS          string `json:"goos"`
	GOARCH        string `json:"goarch"`

	// WallNS is the wall-clock cost of producing the whole suite — the
	// simulator's own speed, as opposed to the virtual-time numbers below.
	WallNS int64 `json:"wall_ns"`

	// Startup is Figure 5(a) at reduced sizes: start_pes and Hello World
	// virtual seconds for both connection modes.
	Startup []bench.StartupPoint `json:"startup"`

	// Latency is Figure 6 at reduced sizes: put/get virtual latency (ns per
	// op) for both modes.
	Latency []bench.LatencyPoint `json:"latency_put_get"`

	// CreditStall is the resource-plane backpressure suite: burst
	// put-with-signal latency (virtual ns per op) and the stall/NAK
	// counters as the receive-queue depth shrinks; depth 0 is the
	// unbounded baseline.
	CreditStall []bench.CreditPoint `json:"latency_credit_stall"`

	// PhasesStatic / PhasesOnDemand are the obs-plane startup-phase
	// breakdowns (virtual seconds per phase, averaged across PEs).
	PhasesStatic   []bench.PhasePoint `json:"phases_static"`
	PhasesOnDemand []bench.PhasePoint `json:"phases_ondemand"`
}

func main() {
	out := flag.String("o", "", "output file (default BENCH_<yyyy-mm-dd>.json)")
	flag.Parse()

	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", time.Now().UTC().Format("2006-01-02"))
	}

	d := doc{
		SchemaVersion: SchemaVersion,
		Date:          time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
	}

	die := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
	}

	t0 := time.Now()

	var err error
	d.Startup, err = bench.Startup([]int{64, 128, 256}, 8, 256)
	die(err)

	d.Latency, err = bench.PutGetLatency([]int{8, 4096, 65536}, 50)
	die(err)

	d.CreditStall, err = bench.CreditStallLatency([]int{0, 16, 4, 1}, 32, 20)
	die(err)

	d.PhasesStatic, err = bench.PhaseBreakdown(gasnet.Static, []int{64, 128}, 8)
	die(err)
	d.PhasesOnDemand, err = bench.PhaseBreakdown(gasnet.OnDemand, []int{64, 128}, 8)
	die(err)

	d.WallNS = time.Since(t0).Nanoseconds()

	f, err := os.Create(path)
	die(err)
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	die(enc.Encode(&d))
	die(f.Close())
	fmt.Printf("wrote %s (suite wall time %.1fs)\n", path, float64(d.WallNS)/1e9)
}
