// Command reproduce regenerates the paper's tables and figures as text
// tables. Without flags it runs every experiment at laptop-friendly default
// scales; -full uses the paper's scales where memory permits (the static
// fully connected sweep is capped by -maxstatic; see EXPERIMENTS.md).
//
// Usage:
//
//	reproduce [-exp all|fig1|fig2|fig5a|fig5b|fig6|fig7|fig8a|fig8b|fig9|table1|ablation|phases|topology|credits|footprint] [-full]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"goshmem/internal/apps/nas"
	"goshmem/internal/bench"
	"goshmem/internal/gasnet"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (all, fig1, fig2, fig5a, fig5b, fig6, fig7, fig8a, fig8b, fig9, table1, ablation, phases, topology, credits, footprint)")
	full := flag.Bool("full", false, "use paper-scale job sizes (slower; needs several GiB of RAM)")
	maxStatic := flag.Int("maxstatic", 0, "largest job size for static (fully connected) sweeps; 0 = preset")
	out := flag.String("o", "", "also write output to this file")
	flag.Parse()

	w := os.Stdout
	var tee *os.File
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		tee = f
	}
	emit := func(t *bench.Table) {
		t.Fprint(w)
		if tee != nil {
			t.Fprint(tee)
		}
	}

	// Scale presets.
	ppn := 16
	initSizes := []int{128, 256, 512, 1024}             // Fig 1 / 5b sweep
	startupSizes := []int{128, 256, 512, 1024}          // Fig 5a sweep
	msgSizes := []int{1, 16, 256, 4096, 65536, 1 << 20} // Fig 6
	collSizes := []int{1, 16, 256, 1024}                // Fig 7a/b per-PE bytes
	barrierSizes := []int{16, 64, 256}                  // Fig 7c
	collNP := 128
	nasNP, nasClass := 64, nas.ClassA
	g500Sizes := []int{16, 64}
	resSizes := []int{16, 64, 256}
	projN := 1024
	capStatic := 1024
	if *full {
		initSizes = []int{128, 256, 512, 1024, 2048, 4096}
		startupSizes = []int{128, 256, 512, 1024, 2048, 4096, 8192}
		collNP = 512
		barrierSizes = []int{64, 128, 256, 512, 1024}
		nasNP, nasClass = 256, nas.ClassB
		g500Sizes = []int{128, 256, 512}
		resSizes = []int{64, 256, 1024}
		projN = 4096
		capStatic = 4096
	}
	if *maxStatic > 0 {
		capStatic = *maxStatic
	}

	want := func(name string) bool { return *exp == "all" || strings.EqualFold(*exp, name) }
	die := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "reproduce:", err)
			os.Exit(1)
		}
	}

	var startupPts []bench.StartupPoint
	var nasPts []bench.NASPoint
	var resSeries map[string][]bench.PeerPoint

	if want("fig1") {
		sizes := capSizes(initSizes, capStatic)
		pts, err := bench.InitBreakdown(gasnet.Static, sizes, ppn)
		die(err)
		emit(bench.BreakdownTable("Figure 1: start_pes breakdown, current (static) design, 16 ppn", pts))
	}
	if want("fig5b") {
		pts, err := bench.InitBreakdown(gasnet.OnDemand, initSizes, ppn)
		die(err)
		emit(bench.BreakdownTable("Figure 5(b): start_pes breakdown, proposed (on-demand + PMIX_Iallgather) design", pts))
	}
	if want("fig5a") || want("fig2") {
		var err error
		startupPts, err = bench.Startup(startupSizes, ppn, capStatic)
		die(err)
		if want("fig5a") {
			emit(bench.StartupTable(startupPts))
		}
	}
	if want("fig6") {
		pts, err := bench.PutGetLatency(msgSizes, 200)
		die(err)
		emit(bench.PutGetTable(pts))
		apts, err := bench.AtomicLatency(500)
		die(err)
		emit(bench.AtomicTable(apts))
	}
	if want("fig7") {
		pts, err := bench.CollectiveLatency(collNP, collSizes, 5, 8)
		die(err)
		emit(bench.CollectiveTable(collNP, pts))
		bpts, err := bench.BarrierLatency(barrierSizes, 20, 8)
		die(err)
		emit(bench.BarrierTable(bpts))
	}
	if want("fig8a") || want("fig2") {
		var err error
		nasPts, err = bench.NASExecution(nasNP, 8, nasClass)
		die(err)
		if want("fig8a") {
			emit(bench.NASTable(nasNP, nasClass, nasPts))
		}
	}
	if want("fig8b") {
		pts, err := bench.Graph500Execution(g500Sizes, 8)
		die(err)
		emit(bench.Graph500Table(pts))
	}
	if want("table1") {
		np := 256
		if !*full {
			np = 64
		}
		pts, err := bench.PeersAt(np, 8)
		die(err)
		emit(bench.PeersTableRender(np, pts))
	}
	if want("fig9") || want("fig2") {
		var proj map[string]float64
		var err error
		resSeries, proj, err = bench.ResourceUsage(resSizes, 8, projN)
		die(err)
		if want("fig9") {
			emit(bench.ResourceTable(resSeries, proj, resSizes, projN))
		}
	}
	if want("fig2") {
		emit(bench.SummaryTable(startupPts, nasPts, resSeries))
	}
	if want("phases") {
		// Observability-plane view of the Fig 1 / Fig 5(b) breakdowns: the
		// same init interval, attributed by obs.InitPhase at finer grain.
		sizes := capSizes(initSizes, capStatic)
		pts, err := bench.PhaseBreakdown(gasnet.Static, sizes, ppn)
		die(err)
		emit(bench.PhaseTable("Startup phases (obs plane), current (static) design", pts))
		pts, err = bench.PhaseBreakdown(gasnet.OnDemand, initSizes, ppn)
		die(err)
		emit(bench.PhaseTable("Startup phases (obs plane), proposed (on-demand) design", pts))
	}
	if want("ablation") {
		rows, err := bench.Ablations(64, 8)
		die(err)
		emit(bench.AblationTable(rows))
	}
	if want("credits") {
		// Not a paper figure: the resource plane's backpressure tax, burst
		// put-with-signal latency as the receive-queue depth shrinks.
		pts, err := bench.CreditStallLatency([]int{0, 16, 4, 1}, 32, 20)
		die(err)
		emit(bench.CreditTable(pts))
	}
	if want("footprint") {
		// Fig 5(a)'s memory story measured from inside the engine: the
		// footprint census at the init-done boundary, per-PE bytes and
		// goroutines versus job size in both modes, reconciled against
		// runtime.ReadMemStats.
		sizes := []int{64, 256, 1024}
		if *full {
			sizes = []int{64, 256, 1024, 4096}
		}
		st, err := bench.FootprintSweep(gasnet.Static, capSizes(sizes, capStatic), ppn, 0)
		die(err)
		od, err := bench.FootprintSweep(gasnet.OnDemand, sizes, ppn, 0)
		die(err)
		emit(bench.FootprintTable(st, od))
	}
	if want("topology") {
		// Flow-telemetry reproduction of Table I: rerun the applications
		// with the per-pair matrix recorder on and reduce the recorded
		// traffic instead of reading the conduit's peer sets.
		np := 256
		if !*full {
			np = 64
		}
		pts, err := bench.TopologyAt(np, 8)
		die(err)
		emit(bench.TopologyTable(np, pts))
	}
}

func capSizes(sizes []int, max int) []int {
	var out []int
	for _, s := range sizes {
		if s <= max {
			out = append(out, s)
		}
	}
	return out
}
