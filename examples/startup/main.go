// Startup example: reproduces the paper's headline phenomenon interactively
// — start_pes time versus job size for the current (static, fully
// connected) and proposed (on-demand + non-blocking PMI) designs, printing
// the same per-phase breakdown as Figures 1 and 5(b).
//
//	go run ./examples/startup
package main

import (
	"fmt"
	"log"

	"goshmem/internal/cluster"
	"goshmem/internal/gasnet"
	"goshmem/internal/shmem"
	"goshmem/internal/vclock"
)

func main() {
	fmt.Println("start_pes time by design (1 GiB modeled heap, 16 ppn)")
	fmt.Printf("%8s  %28s  %28s  %8s\n", "nprocs", "static: total (conn/pmi)", "on-demand: total (conn/pmi)", "speedup")
	for _, np := range []int{64, 128, 256, 512} {
		var times [2]float64
		var detail [2]string
		for i, mode := range []gasnet.Mode{gasnet.Static, gasnet.OnDemand} {
			res, err := cluster.Run(cluster.Config{
				NP: np, PPN: 16, Mode: mode,
				HeapSize: 64 << 10, DeclaredHeapSize: 1 << 30,
			}, func(c *shmem.Ctx) {})
			if err != nil {
				log.Fatal(err)
			}
			b := res.PEs[0].Breakdown
			times[i] = vclock.Seconds(res.InitAvg)
			detail[i] = fmt.Sprintf("%6.3fs (%5.3f/%5.3f)", times[i],
				vclock.Seconds(b.ConnectionSetup), vclock.Seconds(b.PMIExchange))
		}
		fmt.Printf("%8d  %28s  %28s  %7.1fx\n", np, detail[0], detail[1], times[0]/times[1])
	}
	fmt.Println("\nThe static design's connection-setup and PMI costs grow with N;")
	fmt.Println("the proposed design defers both, so start_pes stays near constant.")
}
