// Graph500 example: the hybrid MPI+OpenSHMEM BFS of the paper's Figure 8(b)
// — Kronecker graph generation distributed with MPI Alltoallv, BFS expansion
// with one-sided OpenSHMEM compare-and-swap/put, level termination with MPI
// allreduce — all over the unified runtime's single connection pool.
//
//	go run ./examples/graph500
package main

import (
	"fmt"
	"log"

	"goshmem/internal/apps/graph500"
	"goshmem/internal/cluster"
	"goshmem/internal/gasnet"
	"goshmem/internal/mpi"
	"goshmem/internal/shmem"
	"goshmem/internal/vclock"
)

func main() {
	const np, ppn = 16, 8
	params := graph500.Params{Scale: 9, EdgeFactor: 16, Roots: 2, Seed: 42, ComputeScale: 1}

	for _, mode := range []gasnet.Mode{gasnet.Static, gasnet.OnDemand} {
		var r graph500.Result
		res, err := cluster.Run(cluster.Config{NP: np, PPN: ppn, Mode: mode},
			func(c *shmem.Ctx) {
				m := mpi.New(c.Conduit()) // hybrid: MPI shares the conduit
				out := graph500.Run(c, m, params)
				if c.Me() == 0 {
					r = out
				}
			})
		if err != nil {
			log.Fatal(err)
		}
		status := "FAILED"
		if r.ValidationOK {
			status = "ok"
		}
		fmt.Printf("%-10s  job %6.3fs  vertices %d  traversed %d  validation %-6s  endpoints/PE %5.1f\n",
			mode, vclock.Seconds(res.JobVT), r.NVertices, r.TraversedSum, status, res.AvgEndpoints())
	}
	fmt.Println("\nBoth runtimes share one connection pool: an MPI collective reuses connections")
	fmt.Println("opened by OpenSHMEM puts, so the hybrid job behaves like a single application.")
}
