// UPC example: a second PGAS language on the same conduit. The paper's
// section IV-C argues the conduit must stay language-agnostic — it carries
// the upper layer's segment descriptor as an opaque payload on the connect
// handshake. Here a miniature UPC runtime (shared arrays with block-cyclic
// affinity, upc_forall, upc_barrier) attaches its own descriptor format and
// still gets on-demand connections for free: a stencil over a shared array
// touches only neighbouring threads, so only those connections exist.
//
//	go run ./examples/upc
package main

import (
	"fmt"
	"log"
	"sync"

	"goshmem/internal/cluster"
	"goshmem/internal/gasnet"
	"goshmem/internal/shmem"
	"goshmem/internal/upc"
)

func main() {
	const threads = 8
	const elems = 64

	var mu sync.Mutex
	endpoints := map[int]int{}

	err := cluster.RunEnvs(cluster.Config{NP: threads, PPN: 4},
		func(env shmem.Env) {
			th := upc.Attach(env, upc.Options{Mode: gasnet.OnDemand})
			defer th.Detach()

			// shared [1] long a[elems]; — purely cyclic layout.
			a := th.AllAlloc(elems, 1)
			th.ForAll(a, func(i int) { th.Write(a, i, int64(i)) })
			th.Barrier()

			// A 3-point stencil: each thread updates its elements from the
			// neighbours (one-sided reads from adjacent threads only).
			b := th.AllAlloc(elems, 1)
			th.ForAll(a, func(i int) {
				left, right := i-1, i+1
				if left < 0 {
					left = 0
				}
				if right >= elems {
					right = elems - 1
				}
				v := (th.Read(a, left) + th.Read(a, i) + th.Read(a, right)) / 3
				th.Write(b, i, v)
			})
			th.Barrier()

			if th.MyThread() == 0 {
				fmt.Print("smoothed: ")
				for i := 0; i < 8; i++ {
					fmt.Printf("%d ", th.Read(b, i))
				}
				fmt.Println("...")
			}
			th.Barrier()
			mu.Lock()
			endpoints[th.MyThread()] = th.Stats().RCQPsCreated
			mu.Unlock()
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nRC endpoints per thread (on-demand, %d threads):", threads)
	for i := 0; i < threads; i++ {
		fmt.Printf(" %d", endpoints[i])
	}
	fmt.Println("\nEach thread connected only to its stencil neighbours — the conduit served")
	fmt.Println("UPC exactly as it serves OpenSHMEM, carrying UPC's own segment descriptors.")
}
