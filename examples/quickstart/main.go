// Quickstart: the smallest complete OpenSHMEM program on the simulated
// cluster — symmetric allocation, one-sided puts, atomics, synchronization
// and a reduction, with on-demand connection management (the paper's
// proposed design) enabled by default.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"goshmem/internal/cluster"
	"goshmem/internal/gasnet"
	"goshmem/internal/shmem"
	"goshmem/internal/vclock"
)

func main() {
	const np = 8
	res, err := cluster.Run(cluster.Config{
		NP:   np,
		PPN:  4,               // two simulated nodes
		Mode: gasnet.OnDemand, // connections appear only where traffic flows
	}, func(c *shmem.Ctx) {
		me, n := c.Me(), c.NPEs()

		// Symmetric allocation: the same address on every PE.
		ring := c.Malloc(8) // one int64
		counter := c.Malloc(8)

		// One-sided put into the right neighbour's memory.
		right := (me + 1) % n
		c.P64(ring, int64(me), right)
		c.BarrierAll()

		// Everyone now holds its left neighbour's rank.
		left := (me - 1 + n) % n
		if got := c.LoadInt64(ring, 0); got != int64(left) {
			log.Fatalf("PE %d: expected %d from left neighbour, got %d", me, left, got)
		}

		// Network atomics: everyone increments a counter on PE 0.
		c.IncInt64(counter, 0)
		c.BarrierAll()
		if me == 0 {
			fmt.Printf("counter on PE 0 after %d increments: %d\n", n, c.LoadInt64(counter, 0))
		}

		// A reduction: sum of squares across all PEs.
		sum := c.ReduceInt64(shmem.OpSum, []int64{int64(me * me)})
		if me == 0 {
			fmt.Printf("sum of squares 0..%d = %d\n", n-1, sum[0])
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\njob finished: %.3fs virtual, start_pes %.3fs avg, %.1f RC endpoints/PE (on-demand)\n",
		vclock.Seconds(res.JobVT), vclock.Seconds(res.InitAvg), res.AvgEndpoints())
}
