// Heat2d example: the paper's 2D-Heat kernel run under both connection
// designs, showing what Table I and Figure 8(a) measure — a sparse
// communication pattern (two halo neighbours plus a reduction tree) whose
// job time improves with on-demand connections purely through faster
// startup, while resource usage collapses from N endpoints per PE to a
// handful.
//
//	go run ./examples/heat2d
package main

import (
	"fmt"
	"log"

	"goshmem/internal/apps/heat2d"
	"goshmem/internal/cluster"
	"goshmem/internal/gasnet"
	"goshmem/internal/shmem"
	"goshmem/internal/vclock"
)

func main() {
	const np, ppn = 32, 8
	params := heat2d.Params{
		NX: 64, NY: 8 * np,
		MaxIters:   200,
		CheckEvery: 20,
		Tol:        1e-4,
	}

	for _, mode := range []gasnet.Mode{gasnet.Static, gasnet.OnDemand} {
		var result heat2d.Result
		res, err := cluster.Run(cluster.Config{NP: np, PPN: ppn, Mode: mode},
			func(c *shmem.Ctx) {
				r := heat2d.Run(c, params)
				if c.Me() == 0 {
					result = r
				}
			})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s  job %7.3fs  start_pes %6.3fs  iters %4d  residual %.2e  endpoints/PE %6.1f  peers/PE %4.1f\n",
			mode, vclock.Seconds(res.JobVT), vclock.Seconds(res.InitAvg),
			result.Iters, result.Residual, res.AvgEndpoints(), res.AvgPeers())
	}
	fmt.Println("\nThe checksums are identical by construction; only startup cost and resource usage differ.")
}
